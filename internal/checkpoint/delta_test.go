package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/rng"
)

// liveRun is a build stepped under test control, for capturing states at
// chosen boundaries of ONE run (midState builds a fresh run per call,
// which can never yield a base and a later state of the same build).
type liveRun struct {
	lv  *delaunay.Live
	ref *delaunay.Mesh
}

func newLiveRun(t testing.TB, seed uint64, n int) *liveRun {
	t.Helper()
	pts := geom.Dedup(geom.UniformSquare(rng.New(seed), n))
	return &liveRun{lv: delaunay.NewLive(pts), ref: delaunay.ParTriangulate(pts)}
}

// step advances k committed rounds and reports whether the build can
// still go further.
func (r *liveRun) step(t testing.TB, k int) bool {
	t.Helper()
	for i := 0; i < k; i++ {
		more, err := r.lv.Step(nil)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if !more {
			return false
		}
	}
	return true
}

// TestDeltaEncodeDecodeRoundtrip: EncodeDelta/DecodeDelta is lossless and
// canonical — field-exact roundtrip, byte-exact re-encode.
func TestDeltaEncodeDecodeRoundtrip(t *testing.T) {
	run := newLiveRun(t, 41, 600)
	run.step(t, 2)
	base := run.lv.CaptureState()
	run.step(t, 2)
	d, err := run.lv.CaptureDelta(base.Watermark())
	if err != nil {
		t.Fatalf("CaptureDelta: %v", err)
	}
	meta := Meta{Seed: 41, Build: 7}
	ch := Chain{BaseGen: 3, CRCTris: crcTris(0, base.Tris), CRCFinal: crcFinal(0, base.Final)}
	img := EncodeDelta(d, meta, ch)

	got, gotMeta, gotCh, err := DecodeDelta(img)
	if err != nil {
		t.Fatalf("DecodeDelta: %v", err)
	}
	if gotMeta != meta || gotCh != ch {
		t.Fatalf("binding roundtrip: meta %+v chain %+v", gotMeta, gotCh)
	}
	if got.Base != d.Base || got.Round != d.Round || got.Done != d.Done || got.N != d.N {
		t.Fatalf("delta scalars roundtrip: %+v vs %+v", got, d)
	}
	if got.Stats != d.Stats || got.Pred != d.Pred {
		t.Fatal("delta counters roundtrip mismatch")
	}
	if len(got.Tris) != len(d.Tris) || len(got.Final) != len(d.Final) ||
		len(got.Faces) != len(d.Faces) || len(got.Cand) != len(d.Cand) {
		t.Fatal("delta collection sizes roundtrip mismatch")
	}
	if reenc := EncodeDelta(got, gotMeta, gotCh); !bytes.Equal(reenc, img) {
		t.Fatal("delta re-encode is not byte-identical")
	}
	// DecodeAny dispatches on the leading frame type.
	any, err := DecodeAny(img)
	if err != nil || any.Kind != KindDelta {
		t.Fatalf("DecodeAny(delta): kind %v err %v", any.Kind, err)
	}
	if !bytes.Equal(EncodeAny(any), img) {
		t.Fatal("EncodeAny(DecodeAny(delta)) is not byte-identical")
	}
	// The plain full-image decoder must refuse a delta, typed.
	if _, _, err := Decode(img); !errors.Is(err, ErrFrameOrder) {
		t.Fatalf("Decode(delta image) = %v, want ErrFrameOrder", err)
	}
}

// TestDeltaChainRestoreEveryBoundary is the property test of the tentpole
// claim: committing via SaveAuto (full image, then deltas chained on it)
// at EVERY committed boundary, the directory must restore — through the
// base⊕delta chain — to a state byte-identical (encoding and all) to the
// full capture at that boundary, and the restored state must resume to
// the byte-identical reference mesh.
func TestDeltaChainRestoreEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	run := newLiveRun(t, 43, 900)
	meta := Meta{Seed: 43, Build: 2}
	refDigest := DigestMesh(run.ref)

	deltas := 0
	for more := true; more; {
		more = run.step(t, 1)
		st := run.lv.CaptureState()
		_, kind, err := w.SaveAuto(st, meta)
		if err != nil {
			t.Fatalf("SaveAuto at round %d: %v", st.Round, err)
		}
		if kind == KindDelta {
			deltas++
		}
		got, gotMeta, err := Restore(dir)
		if err != nil {
			t.Fatalf("Restore at round %d: %v", st.Round, err)
		}
		if gotMeta != meta {
			t.Fatalf("restored meta %+v at round %d", gotMeta, st.Round)
		}
		// Byte-identity: the chain-restored state and the direct capture
		// must be indistinguishable even to the serializer.
		if !bytes.Equal(Encode(got, gotMeta), Encode(st, meta)) {
			t.Fatalf("round %d: chain restore differs from the full capture", st.Round)
		}
	}
	if deltas == 0 {
		t.Fatal("SaveAuto never produced a delta; the chain path was not exercised")
	}
	got, _, err := Restore(dir)
	if err != nil {
		t.Fatalf("final Restore: %v", err)
	}
	if d := DigestMesh(finishFrom(t, got)); d != refDigest {
		t.Fatalf("resumed digest %08x, reference %08x", d, refDigest)
	}
}

// TestSaveAutoChainPolicy: the full/delta cadence follows the chain cap,
// and SaveDelta without a tip reports ErrNoBase.
func TestSaveAutoChainPolicy(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	w.SetMaxChain(2)
	run := newLiveRun(t, 47, 700)
	meta := Meta{Seed: 47}

	if _, err := w.SaveDelta(run.lv.CaptureState(), meta); !errors.Is(err, ErrNoBase) {
		t.Fatalf("SaveDelta without a tip = %v, want ErrNoBase", err)
	}
	var kinds []Kind
	for i := 0; i < 6; i++ {
		run.step(t, 1)
		_, kind, err := w.SaveAuto(run.lv.CaptureState(), meta)
		if err != nil {
			t.Fatalf("SaveAuto %d: %v", i, err)
		}
		kinds = append(kinds, kind)
	}
	want := []Kind{KindFull, KindDelta, KindDelta, KindFull, KindDelta, KindDelta}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("save kinds %v, want %v", kinds, want)
		}
	}
	// A different run's metadata cannot chain on the tip.
	if _, err := w.SaveDelta(run.lv.CaptureState(), Meta{Seed: 48}); !errors.Is(err, ErrNoBase) {
		t.Fatalf("SaveDelta with foreign meta = %v, want ErrNoBase", err)
	}
	// SetMaxChain(0) disables deltas outright.
	w.SetMaxChain(0)
	run.step(t, 1)
	if _, kind, err := w.SaveAuto(run.lv.CaptureState(), meta); err != nil || kind != KindFull {
		t.Fatalf("SaveAuto with chain disabled: kind %v err %v", kind, err)
	}
}

// TestPruneKeepsChainBases is the regression test for chain-aware
// pruning: with a long delta chain, the naive newest-keepGenerations
// policy would delete the full base image the surviving deltas depend on,
// silently destroying every restore point. The chain-aware prune must
// keep the base alive as long as a retained delta needs it — and still
// collect it once a later full image retires the chain.
func TestPruneKeepsChainBases(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	run := newLiveRun(t, 53, 800)
	meta := Meta{Seed: 53}
	run.step(t, 1)
	if _, err := w.Save(run.lv.CaptureState(), meta); err != nil { // gen 1: the full base
		t.Fatalf("base Save: %v", err)
	}
	// 2*keepGenerations deltas: far more than the naive window.
	for i := 0; i < 2*keepGenerations; i++ {
		run.step(t, 1)
		if _, err := w.SaveDelta(run.lv.CaptureState(), meta); err != nil {
			t.Fatalf("SaveDelta %d: %v", i, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ckptName(1))); err != nil {
		t.Fatalf("prune deleted the base generation a live delta chain depends on: %v", err)
	}
	st, _, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore through the retained chain: %v", err)
	}
	if d := DigestMesh(finishFrom(t, st)); d != DigestMesh(run.ref) {
		t.Fatalf("chain restore digest %08x, reference %08x", d, DigestMesh(run.ref))
	}
	// Retire the chain with full images; the old base must now be
	// collectable — chain-aware pruning is not a leak.
	for i := 0; i < keepGenerations; i++ {
		run.step(t, 1)
		if _, err := w.Save(run.lv.CaptureState(), meta); err != nil {
			t.Fatalf("retiring Save %d: %v", i, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ckptName(1))); !os.IsNotExist(err) {
		t.Fatal("retired base generation was never pruned (chain-aware prune leaks)")
	}
}

// TestRestoreFallsBackPastBrokenDelta: a corrupt delta must not orphan
// its base — Restore skips the broken tip and lands on the newest link
// that still resolves.
func TestRestoreFallsBackPastBrokenDelta(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	run := newLiveRun(t, 59, 700)
	meta := Meta{Seed: 59}
	run.step(t, 1)
	if _, err := w.Save(run.lv.CaptureState(), meta); err != nil {
		t.Fatalf("Save: %v", err)
	}
	run.step(t, 1)
	mid := run.lv.CaptureState()
	if _, err := w.SaveDelta(mid, meta); err != nil {
		t.Fatalf("SaveDelta (gen 2): %v", err)
	}
	run.step(t, 1)
	tipPath, err := w.SaveDelta(run.lv.CaptureState(), meta)
	if err != nil {
		t.Fatalf("SaveDelta (gen 3): %v", err)
	}
	// Corrupt the newest delta; the manifest still points at it.
	data, err := os.ReadFile(tipPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff
	if err := os.WriteFile(tipPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore past broken delta: %v", err)
	}
	if got.Round != mid.Round || len(got.Tris) != len(mid.Tris) {
		t.Fatalf("restored round %d (%d tris), want the intact delta below (round %d, %d tris)",
			got.Round, len(got.Tris), mid.Round, len(mid.Tris))
	}

	// A delta whose BASE is gone must also fall back — here to nothing,
	// so Restore reports the corruption rather than fabricating a state.
	if err := os.Remove(filepath.Join(dir, ckptName(1))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Restore(dir); err == nil || !errors.Is(err, ErrDeltaChain) {
		t.Fatalf("Restore with missing base = %v, want ErrDeltaChain", err)
	}
}

// TestRestoreRejectsForgedChain: a delta rebound to a base of the right
// watermark but different content must fail the prefix-digest check.
func TestRestoreRejectsForgedChain(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	run := newLiveRun(t, 61, 700)
	meta := Meta{Seed: 61}
	run.step(t, 1)
	base := run.lv.CaptureState()
	if _, err := w.Save(base, meta); err != nil {
		t.Fatalf("Save: %v", err)
	}
	run.step(t, 1)
	d, err := run.lv.CaptureDelta(base.Watermark())
	if err != nil {
		t.Fatalf("CaptureDelta: %v", err)
	}
	// Encode the delta with a WRONG content digest for its base: the file
	// is CRC-valid and structurally fine, but the chain must not join.
	forged := EncodeDelta(d, meta, Chain{
		BaseGen: 1, CRCTris: crcTris(0, base.Tris) ^ 1, CRCFinal: crcFinal(0, base.Final),
	})
	if err := os.WriteFile(filepath.Join(dir, ckptName(2)), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got.Round != base.Round {
		t.Fatalf("restore used a forged chain: landed at round %d, want the base's %d", got.Round, base.Round)
	}
}

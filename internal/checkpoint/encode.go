package checkpoint

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"repro/internal/delaunay"
	"repro/internal/geom"
)

// Meta is the run identity carried alongside the build state: enough for
// a restarted process to resume the SAME logical run (the point-set seed
// and which build of a rebuild loop was interrupted), not merely a run of
// the same shape.
type Meta struct {
	Seed  uint64 // point-generator seed of the interrupted build
	Build uint64 // build number within the server's rebuild loop
}

func le32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func le64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// frame assembles one complete frame: type, length, payload, CRC32C over
// everything before the CRC.
func frame(t byte, payload []byte) []byte {
	buf := make([]byte, 0, 5+len(payload)+4)
	buf = append(buf, t)
	buf = le32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return le32(buf, crc32Of(buf))
}

func crc32Of(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// scalarHeader encodes the fields full and delta headers share: round,
// done, n, meta, and the work counters (resumed runs must report the same
// totals as uninterrupted ones — the equality suites compare Stats).
func scalarHeader(buf []byte, round int32, done bool, n int, meta Meta, stats delaunay.Stats, pred geom.PredicateStats) []byte {
	buf = le32(buf, uint32(round))
	if done {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = le64(buf, uint64(n))
	buf = le64(buf, meta.Seed)
	buf = le64(buf, meta.Build)
	buf = le64(buf, uint64(stats.InCircleTests))
	buf = le64(buf, uint64(stats.TrianglesCreated))
	buf = le64(buf, uint64(int64(stats.Rounds)))
	buf = le64(buf, uint64(int64(stats.DepDepth)))
	buf = le64(buf, uint64(pred.Orient2DCalls))
	buf = le64(buf, uint64(pred.Orient2DExact))
	buf = le64(buf, uint64(pred.InCircleCalls))
	buf = le64(buf, uint64(pred.InCircleExact))
	return buf
}

// appendLogFrames appends the frames full and delta files share — the
// triangle log section (corners, encroacher lengths/values, depths, final
// ids: the whole log for a full image, the suffix for a delta), the
// mutable remainder (faces, candidates), and the footer echoing echo.
func appendLogFrames(frames [][]byte, tris []delaunay.Tri, depth, final []int32,
	faceRecs []delaunay.FaceRec, cand []uint64, echo uint64) [][]byte {
	triv := make([]byte, 0, 8+12*len(tris))
	triv = le64(triv, uint64(len(tris)))
	for _, t := range tris {
		triv = le32(triv, uint32(t.V[0]))
		triv = le32(triv, uint32(t.V[1]))
		triv = le32(triv, uint32(t.V[2]))
	}
	frames = append(frames, frame(fTriV, triv))

	elen := make([]byte, 0, 8+4*len(tris))
	elen = le64(elen, uint64(len(tris)))
	totalE := 0
	for _, t := range tris {
		elen = le32(elen, uint32(len(t.E)))
		totalE += len(t.E)
	}
	frames = append(frames, frame(fELen, elen))

	eval := make([]byte, 0, 8+4*totalE)
	eval = le64(eval, uint64(totalE))
	for _, t := range tris {
		for _, w := range t.E {
			eval = le32(eval, uint32(w))
		}
	}
	frames = append(frames, frame(fEVal, eval))

	dep := make([]byte, 0, 8+4*len(depth))
	dep = le64(dep, uint64(len(depth)))
	for _, d := range depth {
		dep = le32(dep, uint32(d))
	}
	frames = append(frames, frame(fDepth, dep))

	fin := make([]byte, 0, 8+4*len(final))
	fin = le64(fin, uint64(len(final)))
	for _, id := range final {
		fin = le32(fin, uint32(id))
	}
	frames = append(frames, frame(fFinal, fin))

	faces := make([]byte, 0, 8+24*len(faceRecs))
	faces = le64(faces, uint64(len(faceRecs)))
	for _, f := range faceRecs {
		faces = le64(faces, f.Key)
		faces = le64(faces, f.W0)
		faces = le64(faces, f.W1)
	}
	frames = append(frames, frame(fFaces, faces))

	cd := make([]byte, 0, 8+8*len(cand))
	cd = le64(cd, uint64(len(cand)))
	for _, k := range cand {
		cd = le64(cd, k)
	}
	frames = append(frames, frame(fCand, cd))

	foot := le64(make([]byte, 0, 8), echo)
	return append(frames, frame(fFooter, foot))
}

// encodeFrames serializes st+meta into the fixed frame sequence. Each
// element of the result is one complete frame, so a writer can interleave
// per-frame I/O (and per-frame fault injection) without re-parsing.
func encodeFrames(st *delaunay.BuildState, meta Meta) [][]byte {
	frames := make([][]byte, 0, numFrames)
	hdr := scalarHeader(make([]byte, 0, hdrLen), st.Round, st.Done, st.N, meta, st.Stats, st.Pred)
	frames = append(frames, frame(fHeader, hdr))

	pts := make([]byte, 0, 8+16*len(st.Pts))
	pts = le64(pts, uint64(len(st.Pts)))
	for _, p := range st.Pts {
		pts = le64(pts, math.Float64bits(p.X))
		pts = le64(pts, math.Float64bits(p.Y))
	}
	frames = append(frames, frame(fPoints, pts))

	return appendLogFrames(frames, st.Tris, st.Depth, st.Final, st.Faces, st.Cand, uint64(len(st.Tris)))
}

// Chain binds a delta generation to its base: which generation it
// extends, and CRC32C digests over the base's triangle-corner and
// final-id streams. The digests tie the delta to the base's CONTENT —
// a base of the right shape but the wrong build (or a tampered one)
// fails the digest check at restore, which is what makes a chain of
// CRC-valid files still refuse to join across runs.
type Chain struct {
	BaseGen  uint64
	CRCTris  uint32
	CRCFinal uint32
}

// crcTris extends a running CRC32C over a triangle-corner stream; called
// with crc 0 and the whole log it digests a full prefix, called with the
// tip's digest and a suffix it extends in O(suffix).
func crcTris(crc uint32, tris []delaunay.Tri) uint32 {
	var buf [12]byte
	for _, t := range tris {
		binary.LittleEndian.PutUint32(buf[0:], uint32(t.V[0]))
		binary.LittleEndian.PutUint32(buf[4:], uint32(t.V[1]))
		binary.LittleEndian.PutUint32(buf[8:], uint32(t.V[2]))
		crc = crc32.Update(crc, castagnoli, buf[:])
	}
	return crc
}

// crcFinal is crcTris for the final-id stream.
func crcFinal(crc uint32, final []int32) uint32 {
	var buf [4]byte
	for _, id := range final {
		binary.LittleEndian.PutUint32(buf[:], uint32(id))
		crc = crc32.Update(crc, castagnoli, buf[:])
	}
	return crc
}

// encodeDeltaFrames serializes an incremental generation: the delta
// header (scalar header + chain binding), the log frames over the SUFFIX
// only, the full mutable remainder, and a footer echoing the resulting
// log length — so a delta costs O(suffix + faces + candidates) to encode
// no matter how large the build below the watermark has grown.
func encodeDeltaFrames(d *delaunay.BuildDelta, meta Meta, ch Chain) [][]byte {
	frames := make([][]byte, 0, numDeltaFrames)
	hdr := scalarHeader(make([]byte, 0, dhdrLen), d.Round, d.Done, d.N, meta, d.Stats, d.Pred)
	hdr = le64(hdr, ch.BaseGen)
	hdr = le32(hdr, uint32(d.Base.Round))
	hdr = le64(hdr, uint64(d.Base.Tris))
	hdr = le64(hdr, uint64(d.Base.Final))
	hdr = le32(hdr, ch.CRCTris)
	hdr = le32(hdr, ch.CRCFinal)
	frames = append(frames, frame(fDeltaHeader, hdr))
	return appendLogFrames(frames, d.Tris, d.Depth, d.Final, d.Faces, d.Cand,
		uint64(d.Base.Tris)+uint64(len(d.Tris)))
}

// preamble returns the fixed file header.
func preamble() []byte {
	b := make([]byte, 0, 16)
	b = append(b, magic...)
	b = le32(b, version)
	b = le32(b, 0) // reserved
	return b
}

// Encode serializes a build state and its metadata into a single
// checkpoint image — the exact bytes Save would commit. Exposed for
// tests and corpus generation; production writes go through Writer.Save,
// which adds the atomic-commit protocol.
func Encode(st *delaunay.BuildState, meta Meta) []byte {
	out := preamble()
	for _, fr := range encodeFrames(st, meta) {
		out = append(out, fr...)
	}
	return out
}

// EncodeDelta serializes a delta image — the exact bytes SaveDelta would
// commit. ch binds the delta to the base generation it extends.
func EncodeDelta(d *delaunay.BuildDelta, meta Meta, ch Chain) []byte {
	out := preamble()
	for _, fr := range encodeDeltaFrames(d, meta, ch) {
		out = append(out, fr...)
	}
	return out
}

// EncodeAny re-serializes a decoded image of either kind. It is the
// canonical-form oracle: for every input DecodeAny accepts,
// EncodeAny(DecodeAny(input)) must reproduce the input byte-for-byte.
func EncodeAny(img *Image) []byte {
	if img.Kind == KindDelta {
		return EncodeDelta(img.Delta, img.Meta, img.Chain)
	}
	return Encode(img.State, img.Meta)
}

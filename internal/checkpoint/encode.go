package checkpoint

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"repro/internal/delaunay"
)

// Meta is the run identity carried alongside the build state: enough for
// a restarted process to resume the SAME logical run (the point-set seed
// and which build of a rebuild loop was interrupted), not merely a run of
// the same shape.
type Meta struct {
	Seed  uint64 // point-generator seed of the interrupted build
	Build uint64 // build number within the server's rebuild loop
}

func le32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func le64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// frame assembles one complete frame: type, length, payload, CRC32C over
// everything before the CRC.
func frame(t byte, payload []byte) []byte {
	buf := make([]byte, 0, 5+len(payload)+4)
	buf = append(buf, t)
	buf = le32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return le32(buf, crc32Of(buf))
}

func crc32Of(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// encodeFrames serializes st+meta into the fixed frame sequence. Each
// element of the result is one complete frame, so a writer can interleave
// per-frame I/O (and per-frame fault injection) without re-parsing.
func encodeFrames(st *delaunay.BuildState, meta Meta) [][]byte {
	frames := make([][]byte, 0, numFrames)

	hdr := make([]byte, 0, hdrLen)
	hdr = le32(hdr, uint32(st.Round))
	if st.Done {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 0)
	}
	hdr = le64(hdr, uint64(st.N))
	hdr = le64(hdr, meta.Seed)
	hdr = le64(hdr, meta.Build)
	// Work counters ride in the header: resumed runs must report the same
	// totals as uninterrupted ones (the equality suites compare Stats).
	hdr = le64(hdr, uint64(st.Stats.InCircleTests))
	hdr = le64(hdr, uint64(st.Stats.TrianglesCreated))
	hdr = le64(hdr, uint64(int64(st.Stats.Rounds)))
	hdr = le64(hdr, uint64(int64(st.Stats.DepDepth)))
	hdr = le64(hdr, uint64(st.Pred.Orient2DCalls))
	hdr = le64(hdr, uint64(st.Pred.Orient2DExact))
	hdr = le64(hdr, uint64(st.Pred.InCircleCalls))
	hdr = le64(hdr, uint64(st.Pred.InCircleExact))
	frames = append(frames, frame(fHeader, hdr))

	pts := make([]byte, 0, 8+16*len(st.Pts))
	pts = le64(pts, uint64(len(st.Pts)))
	for _, p := range st.Pts {
		pts = le64(pts, math.Float64bits(p.X))
		pts = le64(pts, math.Float64bits(p.Y))
	}
	frames = append(frames, frame(fPoints, pts))

	triv := make([]byte, 0, 8+12*len(st.Tris))
	triv = le64(triv, uint64(len(st.Tris)))
	for _, t := range st.Tris {
		triv = le32(triv, uint32(t.V[0]))
		triv = le32(triv, uint32(t.V[1]))
		triv = le32(triv, uint32(t.V[2]))
	}
	frames = append(frames, frame(fTriV, triv))

	elen := make([]byte, 0, 8+4*len(st.Tris))
	elen = le64(elen, uint64(len(st.Tris)))
	totalE := 0
	for _, t := range st.Tris {
		elen = le32(elen, uint32(len(t.E)))
		totalE += len(t.E)
	}
	frames = append(frames, frame(fELen, elen))

	eval := make([]byte, 0, 8+4*totalE)
	eval = le64(eval, uint64(totalE))
	for _, t := range st.Tris {
		for _, w := range t.E {
			eval = le32(eval, uint32(w))
		}
	}
	frames = append(frames, frame(fEVal, eval))

	depth := make([]byte, 0, 8+4*len(st.Depth))
	depth = le64(depth, uint64(len(st.Depth)))
	for _, d := range st.Depth {
		depth = le32(depth, uint32(d))
	}
	frames = append(frames, frame(fDepth, depth))

	fin := make([]byte, 0, 8+4*len(st.Final))
	fin = le64(fin, uint64(len(st.Final)))
	for _, id := range st.Final {
		fin = le32(fin, uint32(id))
	}
	frames = append(frames, frame(fFinal, fin))

	faces := make([]byte, 0, 8+24*len(st.Faces))
	faces = le64(faces, uint64(len(st.Faces)))
	for _, f := range st.Faces {
		faces = le64(faces, f.Key)
		faces = le64(faces, f.W0)
		faces = le64(faces, f.W1)
	}
	frames = append(frames, frame(fFaces, faces))

	cand := make([]byte, 0, 8+8*len(st.Cand))
	cand = le64(cand, uint64(len(st.Cand)))
	for _, k := range st.Cand {
		cand = le64(cand, k)
	}
	frames = append(frames, frame(fCand, cand))

	foot := le64(make([]byte, 0, 8), uint64(len(st.Tris)))
	frames = append(frames, frame(fFooter, foot))
	return frames
}

// preamble returns the fixed file header.
func preamble() []byte {
	b := make([]byte, 0, 16)
	b = append(b, magic...)
	b = le32(b, version)
	b = le32(b, 0) // reserved
	return b
}

// Encode serializes a build state and its metadata into a single
// checkpoint image — the exact bytes Save would commit. Exposed for
// tests and corpus generation; production writes go through Writer.Save,
// which adds the atomic-commit protocol.
func Encode(st *delaunay.BuildState, meta Meta) []byte {
	out := preamble()
	for _, fr := range encodeFrames(st, meta) {
		out = append(out, fr...)
	}
	return out
}

package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at the decoder. The
// properties under test:
//
//   - Decode never panics: every structurally invalid input maps to one
//     of the package's typed errors;
//   - Decode never over-allocates: allocation sizes are derived from the
//     actual input length, never from an attacker-controlled count alone
//     (a violation shows up as the fuzz engine OOMing on a small input);
//   - the format is canonical: any input that decodes successfully must
//     re-encode to the identical bytes, so there are no two encodings of
//     one state and no decoder-accepted garbage that Encode couldn't have
//     produced.
func FuzzCheckpointDecode(f *testing.F) {
	st, _ := midState(f, 3, 200, 2)
	img := Encode(st, Meta{Seed: 3, Build: 1})
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add(img[:17])
	flip := append([]byte(nil), img...)
	flip[len(flip)/3] ^= 0x10
	f.Add(flip)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(preamble())

	// Delta-format seeds: a valid base-plus-delta image, a truncation, a
	// delta whose chain header names a base generation that will never
	// exist (decodes fine — resolution is Restore's job), and a CRC-valid
	// forgery whose recorded watermark disagrees with its own suffix
	// (DecodeDelta must reject it as ErrDeltaChain, not crash on it).
	run := newLiveRun(f, 3, 200)
	run.step(f, 1)
	base := run.lv.CaptureState()
	run.step(f, 1)
	d, err := run.lv.CaptureDelta(base.Watermark())
	if err != nil {
		f.Fatalf("CaptureDelta: %v", err)
	}
	meta := Meta{Seed: 3, Build: 1}
	ch := Chain{BaseGen: 1, CRCTris: crcTris(0, base.Tris), CRCFinal: crcFinal(0, base.Final)}
	dimg := EncodeDelta(d, meta, ch)
	f.Add(dimg)
	f.Add(dimg[:len(dimg)*2/3])
	f.Add(EncodeDelta(d, meta, Chain{BaseGen: 999, CRCTris: ch.CRCTris, CRCFinal: ch.CRCFinal}))
	forged := *d
	forged.Base.Tris += len(forged.Tris) // every suffix final id now falls below the watermark
	f.Add(EncodeDelta(&forged, meta, ch))

	typed := []error{ErrBadMagic, ErrBadVersion, ErrTruncated, ErrFrameCRC, ErrFrameOrder, ErrFrameSize, ErrDeltaChain}
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodeAny(data)
		if err != nil {
			for _, want := range typed {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		if reenc := EncodeAny(img); !bytes.Equal(reenc, data) {
			t.Fatalf("non-canonical: %d input bytes decode but re-encode to %d different bytes",
				len(data), len(reenc))
		}
	})
}

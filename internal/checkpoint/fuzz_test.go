package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at the decoder. The
// properties under test:
//
//   - Decode never panics: every structurally invalid input maps to one
//     of the package's typed errors;
//   - Decode never over-allocates: allocation sizes are derived from the
//     actual input length, never from an attacker-controlled count alone
//     (a violation shows up as the fuzz engine OOMing on a small input);
//   - the format is canonical: any input that decodes successfully must
//     re-encode to the identical bytes, so there are no two encodings of
//     one state and no decoder-accepted garbage that Encode couldn't have
//     produced.
func FuzzCheckpointDecode(f *testing.F) {
	st, _ := midState(f, 3, 200, 2)
	img := Encode(st, Meta{Seed: 3, Build: 1})
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add(img[:17])
	flip := append([]byte(nil), img...)
	flip[len(flip)/3] ^= 0x10
	f.Add(flip)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(preamble())

	typed := []error{ErrBadMagic, ErrBadVersion, ErrTruncated, ErrFrameCRC, ErrFrameOrder, ErrFrameSize}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, meta, err := Decode(data)
		if err != nil {
			for _, want := range typed {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		if reenc := Encode(st, meta); !bytes.Equal(reenc, data) {
			t.Fatalf("non-canonical: %d input bytes decode but re-encode to %d different bytes",
				len(data), len(reenc))
		}
	})
}

// Package checkpoint is the durability layer of the serve-while-building
// story: a versioned, framed on-disk format for a triangulation build
// state (delaunay.BuildState) plus a crash-safe writer and restorer.
//
// # Format
//
// A checkpoint file is a fixed preamble followed by a fixed sequence of
// frames:
//
//	preamble  := magic[8] version:u32le reserved:u32le
//	frame     := type:u8 len:u32le payload[len] crc:u32le
//
// The CRC is CRC32-C (Castagnoli) over type || len || payload, so a bit
// flip anywhere in a frame — including its own header — fails the check.
// Frames appear in exactly one order (header, points, triangle corners,
// encroacher lengths, encroacher values, depths, final ids, faces,
// candidates, footer); the footer frame marks a complete file, so
// truncation at ANY byte is detected: mid-frame truncation fails the
// length or CRC check, and truncation at a frame boundary leaves the
// footer missing.
//
// Multi-byte integers are little-endian. Element counts inside a payload
// are cross-checked against the payload length before any allocation, so
// a decoder's memory use is bounded by the input's actual size — an
// attacker-controlled length field cannot force an over-allocation.
//
// # Crash safety
//
// Save writes to a dot-prefixed temp file in the target directory, fsyncs
// it, renames it to its final generation-numbered name, and fsyncs the
// directory; the manifest recording the newest committed generation is
// updated with the same protocol. A crash at any byte therefore leaves
// either the previous generation or a fully valid new one — never a
// half-written file under a committed name. Restore walks generations
// newest-first and falls back past any that fail full validation.
package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// magic identifies a checkpoint file; the trailing digit is the major
	// format generation (bumped only on incompatible preamble changes).
	magic = "RIDTCKP1"
	// version is the frame-layout version within the magic's generation.
	version = 1

	// maxFramePayload caps a single frame's declared length. Frames are
	// never close to this in practice; the cap exists so corrupt or
	// adversarial headers are rejected as structurally invalid rather
	// than probed against the remaining input.
	maxFramePayload = 1 << 30
)

// Frame types, in their required file order.
const (
	fHeader   byte = 1 + iota // round, done, n, and the run metadata
	fPoints                   // input points + 3 bounding corners
	fTriV                     // triangle corner indices, 3 per triangle
	fELen                     // per-triangle encroacher-list lengths
	fEVal                     // concatenated encroacher lists
	fDepth                    // per-triangle dependence depths
	fFinal                    // final triangle ids, ascending
	fFaces                    // face-map epoch snapshot records
	fCand                     // candidate face keys for the next round
	fFooter                   // completion marker (echoes the triangle count)
	numFrames      = int(fFooter)

	// fDeltaHeader opens a DELTA generation: an incremental checkpoint
	// holding only the append-only suffix past a recorded base watermark
	// plus the full mutable remainder. A delta file is the same preamble
	// followed by fDeltaHeader, fTriV, fELen, fEVal, fDepth, fFinal,
	// fFaces, fCand, fFooter — the log frames carry the SUFFIX, there is
	// no points frame (the base has the points), and the footer echoes the
	// RESULTING log length (base watermark + suffix) as a cross-check.
	fDeltaHeader   byte = fFooter + 1
	numDeltaFrames      = numFrames - 1 // no points frame
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hdrLen is the fixed header-frame payload size: round u32, done u8,
// n u64, meta (2×u64), Stats (4×u64), PredicateStats (4×u64).
const hdrLen = 4 + 1 + 8 + 2*8 + 4*8 + 4*8

// dhdrLen is the fixed delta-header payload size: everything hdrLen
// carries plus the chain-binding fields — base generation u64, base
// watermark (round u32, tris u64, final u64), and the two prefix digests
// (CRC32C over the base's triangle-corner stream and final-id stream)
// that bind the delta to its base's CONTENT, not just its shape.
const dhdrLen = hdrLen + 8 + (4 + 8 + 8) + 2*4

// Typed decode errors. Every structurally invalid input maps to one of
// these (possibly wrapped with position detail) — never a panic.
var (
	ErrBadMagic   = errors.New("checkpoint: bad magic")
	ErrBadVersion = errors.New("checkpoint: unsupported version")
	ErrTruncated  = errors.New("checkpoint: truncated")
	ErrFrameCRC   = errors.New("checkpoint: frame CRC mismatch")
	ErrFrameOrder = errors.New("checkpoint: frame out of order")
	ErrFrameSize  = errors.New("checkpoint: frame size inconsistent")

	// ErrNoCheckpoint is returned by Restore when the directory holds no
	// checkpoint files at all — callers treat it as "start fresh".
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

	// ErrDeltaChain marks a delta that cannot be joined to its recorded
	// base: the base generation is missing or invalid, or its watermark,
	// prefix digests, or run metadata disagree with what the delta
	// recorded. Restore treats it like any corruption — fall back.
	ErrDeltaChain = errors.New("checkpoint: delta chain broken")

	// ErrNoBase is returned by SaveDelta when the writer has no committed
	// chain tip compatible with the state (fresh writer, different run, or
	// a state behind the tip); callers fall back to a full Save.
	ErrNoBase = errors.New("checkpoint: no compatible base generation for a delta")
)

func frameName(t byte) string {
	switch t {
	case fHeader:
		return "header"
	case fPoints:
		return "points"
	case fTriV:
		return "triangle-corners"
	case fELen:
		return "encroacher-lengths"
	case fEVal:
		return "encroacher-values"
	case fDepth:
		return "depths"
	case fFinal:
		return "final-ids"
	case fFaces:
		return "faces"
	case fCand:
		return "candidates"
	case fFooter:
		return "footer"
	case fDeltaHeader:
		return "delta-header"
	}
	return fmt.Sprintf("frame-%d", t)
}

package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/delaunay"
	"repro/internal/geom"
)

// decoder walks a checkpoint image frame by frame. All reads are
// bounds-checked against the actual input; declared lengths and counts
// are verified BEFORE any allocation sized from them, so memory use is
// O(len(input)) even for adversarial headers.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

// makeNonEmpty keeps decoded empty collections nil, so a decoded state
// compares field-for-field with a freshly captured one.
func makeNonEmpty[T any](n int) []T {
	if n == 0 {
		return nil
	}
	return make([]T, n)
}

// nextFrame validates and returns the payload of the next frame, which
// must have type want.
func (d *decoder) nextFrame(want byte) ([]byte, error) {
	if d.remaining() < 5 {
		return nil, fmt.Errorf("%w: %d bytes left at offset %d, need a frame header", ErrTruncated, d.remaining(), d.off)
	}
	t := d.b[d.off]
	n := binary.LittleEndian.Uint32(d.b[d.off+1 : d.off+5])
	if t != want {
		return nil, fmt.Errorf("%w: got %s at offset %d, want %s", ErrFrameOrder, frameName(t), d.off, frameName(want))
	}
	if n > maxFramePayload {
		return nil, fmt.Errorf("%w: %s frame declares %d bytes (cap %d)", ErrFrameSize, frameName(t), n, maxFramePayload)
	}
	total := 5 + int(n) + 4
	if d.remaining() < total {
		return nil, fmt.Errorf("%w: %s frame declares %d payload bytes, %d bytes left", ErrTruncated, frameName(t), n, d.remaining()-5)
	}
	body := d.b[d.off : d.off+5+int(n)]
	crc := binary.LittleEndian.Uint32(d.b[d.off+5+int(n) : d.off+total])
	if crc32Of(body) != crc {
		return nil, fmt.Errorf("%w: %s frame at offset %d", ErrFrameCRC, frameName(t), d.off)
	}
	d.off += total
	return body[5:], nil
}

// countedPayload splits payload into its leading element count and body,
// requiring count*elemSize == len(body) exactly. The multiplication
// cannot overflow: count is rejected first unless it is ≤ len(body),
// which is ≤ maxFramePayload.
func countedPayload(name string, payload []byte, elemSize int) (int, []byte, error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: %s frame too short for its count", ErrFrameSize, name)
	}
	cnt := binary.LittleEndian.Uint64(payload)
	body := payload[8:]
	if cnt > uint64(len(body)) || int(cnt)*elemSize != len(body) {
		return 0, nil, fmt.Errorf("%w: %s frame declares %d elements in %d bytes", ErrFrameSize, name, cnt, len(body))
	}
	return int(cnt), body, nil
}

// checkPreamble validates the fixed 16-byte file header shared by full
// and delta images.
func checkPreamble(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("%w: %d bytes, need a 16-byte preamble", ErrTruncated, len(data))
	}
	if string(data[:8]) != magic {
		return ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != version {
		return fmt.Errorf("%w: %d (supported: %d)", ErrBadVersion, v, version)
	}
	// The reserved word must be zero in this version: rejecting nonzero
	// keeps it available for future use AND keeps every preamble byte
	// covered by some check.
	if r := binary.LittleEndian.Uint32(data[12:16]); r != 0 {
		return fmt.Errorf("%w: reserved word is %#x", ErrBadVersion, r)
	}
	return nil
}

// scalars is the parsed shared prefix of a full or delta header frame.
type scalars struct {
	round int32
	done  bool
	n     int
	meta  Meta
	stats delaunay.Stats
	pred  geom.PredicateStats
}

// parseScalars decodes the first hdrLen bytes of a header payload (the
// fields full and delta headers share).
func parseScalars(hdr []byte) (scalars, error) {
	var s scalars
	s.round = int32(binary.LittleEndian.Uint32(hdr[0:4]))
	if hdr[4] > 1 {
		return s, fmt.Errorf("%w: done flag is %d", ErrFrameSize, hdr[4])
	}
	s.done = hdr[4] != 0
	n := binary.LittleEndian.Uint64(hdr[5:13])
	if n > maxFramePayload/16 {
		return s, fmt.Errorf("%w: header declares %d points", ErrFrameSize, n)
	}
	s.n = int(n)
	s.meta.Seed = binary.LittleEndian.Uint64(hdr[13:21])
	s.meta.Build = binary.LittleEndian.Uint64(hdr[21:29])
	s.stats.InCircleTests = int64(binary.LittleEndian.Uint64(hdr[29:37]))
	s.stats.TrianglesCreated = int64(binary.LittleEndian.Uint64(hdr[37:45]))
	s.stats.Rounds = int(int64(binary.LittleEndian.Uint64(hdr[45:53])))
	s.stats.DepDepth = int(int64(binary.LittleEndian.Uint64(hdr[53:61])))
	s.pred.Orient2DCalls = int64(binary.LittleEndian.Uint64(hdr[61:69]))
	s.pred.Orient2DExact = int64(binary.LittleEndian.Uint64(hdr[69:77]))
	s.pred.InCircleCalls = int64(binary.LittleEndian.Uint64(hdr[77:85]))
	s.pred.InCircleExact = int64(binary.LittleEndian.Uint64(hdr[85:93]))
	return s, nil
}

// logSection is the decoded tail shared by full and delta images: the
// triangle log (whole log or suffix), the mutable remainder, and the
// footer's cross-checks.
type logSection struct {
	tris  []delaunay.Tri
	depth []int32
	final []int32
	faces []delaunay.FaceRec
	cand  []uint64
}

// decodeLogFrames parses fTriV..fFooter. baseTris is the triangle count
// already committed below this section (0 for a full image, the base
// watermark for a delta): the footer must echo baseTris + the section's
// own triangle count, so a delta detached from its header context still
// cross-checks its resulting log length.
func decodeLogFrames(d *decoder, baseTris uint64) (logSection, error) {
	var sec logSection

	pay, err := d.nextFrame(fTriV)
	if err != nil {
		return sec, err
	}
	nt, body, err := countedPayload("triangle-corners", pay, 12)
	if err != nil {
		return sec, err
	}
	sec.tris = makeNonEmpty[delaunay.Tri](nt)
	for i := range sec.tris {
		sec.tris[i].V[0] = int32(binary.LittleEndian.Uint32(body[12*i:]))
		sec.tris[i].V[1] = int32(binary.LittleEndian.Uint32(body[12*i+4:]))
		sec.tris[i].V[2] = int32(binary.LittleEndian.Uint32(body[12*i+8:]))
	}

	pay, err = d.nextFrame(fELen)
	if err != nil {
		return sec, err
	}
	cnt, elens, err := countedPayload("encroacher-lengths", pay, 4)
	if err != nil {
		return sec, err
	}
	if cnt != nt {
		return sec, fmt.Errorf("%w: %d encroacher lengths for %d triangles", ErrFrameSize, cnt, nt)
	}

	pay, err = d.nextFrame(fEVal)
	if err != nil {
		return sec, err
	}
	totalE, evals, err := countedPayload("encroacher-values", pay, 4)
	if err != nil {
		return sec, err
	}
	// The per-triangle lengths must tile the value array exactly. Summing
	// u32 lengths in uint64 cannot overflow (each ≤ 2^32, count ≤ 2^28).
	var sum uint64
	for i := 0; i < nt; i++ {
		sum += uint64(binary.LittleEndian.Uint32(elens[4*i:]))
	}
	if sum != uint64(totalE) {
		return sec, fmt.Errorf("%w: encroacher lengths sum to %d, values frame has %d", ErrFrameSize, sum, totalE)
	}
	// One backing array for every E list: the slices are read-only after
	// restore, and a single allocation keeps the decode at two passes.
	evBack := make([]int32, totalE)
	for i := range evBack {
		evBack[i] = int32(binary.LittleEndian.Uint32(evals[4*i:]))
	}
	off := 0
	for i := 0; i < nt; i++ {
		l := int(binary.LittleEndian.Uint32(elens[4*i:]))
		if l > 0 {
			sec.tris[i].E = evBack[off : off+l : off+l]
		}
		off += l
	}

	pay, err = d.nextFrame(fDepth)
	if err != nil {
		return sec, err
	}
	cnt, body, err = countedPayload("depths", pay, 4)
	if err != nil {
		return sec, err
	}
	if cnt != nt {
		return sec, fmt.Errorf("%w: %d depths for %d triangles", ErrFrameSize, cnt, nt)
	}
	sec.depth = makeNonEmpty[int32](cnt)
	for i := range sec.depth {
		sec.depth[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}

	pay, err = d.nextFrame(fFinal)
	if err != nil {
		return sec, err
	}
	cnt, body, err = countedPayload("final-ids", pay, 4)
	if err != nil {
		return sec, err
	}
	sec.final = makeNonEmpty[int32](cnt)
	for i := range sec.final {
		sec.final[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}

	pay, err = d.nextFrame(fFaces)
	if err != nil {
		return sec, err
	}
	cnt, body, err = countedPayload("faces", pay, 24)
	if err != nil {
		return sec, err
	}
	sec.faces = makeNonEmpty[delaunay.FaceRec](cnt)
	for i := range sec.faces {
		sec.faces[i].Key = binary.LittleEndian.Uint64(body[24*i:])
		sec.faces[i].W0 = binary.LittleEndian.Uint64(body[24*i+8:])
		sec.faces[i].W1 = binary.LittleEndian.Uint64(body[24*i+16:])
	}

	pay, err = d.nextFrame(fCand)
	if err != nil {
		return sec, err
	}
	cnt, body, err = countedPayload("candidates", pay, 8)
	if err != nil {
		return sec, err
	}
	sec.cand = makeNonEmpty[uint64](cnt)
	for i := range sec.cand {
		sec.cand[i] = binary.LittleEndian.Uint64(body[8*i:])
	}

	pay, err = d.nextFrame(fFooter)
	if err != nil {
		return sec, err
	}
	if len(pay) != 8 || binary.LittleEndian.Uint64(pay) != baseTris+uint64(nt) {
		return sec, fmt.Errorf("%w: footer echo mismatch", ErrFrameSize)
	}
	if d.remaining() != 0 {
		return sec, fmt.Errorf("%w: %d trailing bytes after footer", ErrFrameSize, d.remaining())
	}
	return sec, nil
}

// Decode parses a FULL checkpoint image produced by Encode (or committed
// by a Writer). It returns typed errors — never panics — on any
// structurally invalid input, and performs the cross-frame consistency
// checks the format guarantees (matching element counts, footer echo).
// The returned state is structurally sound; callers that will trust its
// indices must still run BuildState.Validate (Restore does). A delta
// image fails with ErrFrameOrder; use DecodeAny to accept either kind.
func Decode(data []byte) (*delaunay.BuildState, Meta, error) {
	var meta Meta
	if err := checkPreamble(data); err != nil {
		return nil, meta, err
	}
	d := &decoder{b: data, off: 16}

	hdr, err := d.nextFrame(fHeader)
	if err != nil {
		return nil, meta, err
	}
	if len(hdr) != hdrLen {
		return nil, meta, fmt.Errorf("%w: header frame is %d bytes, want %d", ErrFrameSize, len(hdr), hdrLen)
	}
	sc, err := parseScalars(hdr)
	if err != nil {
		return nil, meta, err
	}
	meta = sc.meta
	st := &delaunay.BuildState{
		Round: sc.round,
		Done:  sc.done,
		N:     sc.n,
		Stats: sc.stats,
		Pred:  sc.pred,
	}

	pay, err := d.nextFrame(fPoints)
	if err != nil {
		return nil, meta, err
	}
	cnt, body, err := countedPayload("points", pay, 16)
	if err != nil {
		return nil, meta, err
	}
	if cnt != st.N+3 {
		return nil, meta, fmt.Errorf("%w: %d points for n=%d (want n+3)", ErrFrameSize, cnt, st.N)
	}
	st.Pts = make([]geom.Point, cnt)
	for i := range st.Pts {
		st.Pts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(body[16*i:]))
		st.Pts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(body[16*i+8:]))
	}

	sec, err := decodeLogFrames(d, 0)
	if err != nil {
		return nil, meta, err
	}
	st.Tris = sec.tris
	st.Depth = sec.depth
	st.Final = sec.final
	st.Faces = sec.faces
	st.Cand = sec.cand
	return st, meta, nil
}

// DecodeDelta parses a DELTA checkpoint image produced by EncodeDelta.
// Structural cross-checks beyond the shared frame discipline: the footer
// must echo the RESULTING log length (base watermark + suffix), and the
// delta must pass BuildDelta.Validate — in particular every suffix final
// id must land inside the suffix window the recorded watermark implies,
// which is what rejects a CRC-valid file whose watermark was tampered
// with. Chain checks against the concrete base (digests, metadata) are
// the restorer's job.
func DecodeDelta(data []byte) (*delaunay.BuildDelta, Meta, Chain, error) {
	var meta Meta
	var ch Chain
	if err := checkPreamble(data); err != nil {
		return nil, meta, ch, err
	}
	d := &decoder{b: data, off: 16}

	hdr, err := d.nextFrame(fDeltaHeader)
	if err != nil {
		return nil, meta, ch, err
	}
	if len(hdr) != dhdrLen {
		return nil, meta, ch, fmt.Errorf("%w: delta header frame is %d bytes, want %d", ErrFrameSize, len(hdr), dhdrLen)
	}
	sc, err := parseScalars(hdr[:hdrLen])
	if err != nil {
		return nil, meta, ch, err
	}
	meta = sc.meta
	ch.BaseGen = binary.LittleEndian.Uint64(hdr[hdrLen : hdrLen+8])
	baseRound := int32(binary.LittleEndian.Uint32(hdr[hdrLen+8 : hdrLen+12]))
	baseTris := binary.LittleEndian.Uint64(hdr[hdrLen+12 : hdrLen+20])
	baseFinal := binary.LittleEndian.Uint64(hdr[hdrLen+20 : hdrLen+28])
	ch.CRCTris = binary.LittleEndian.Uint32(hdr[hdrLen+28 : hdrLen+32])
	ch.CRCFinal = binary.LittleEndian.Uint32(hdr[hdrLen+32 : hdrLen+36])
	// Bound the watermark before it is ever used as an int: a base log
	// larger than a frame could even hold is structurally absurd.
	if baseTris == 0 || baseTris > maxFramePayload/12 || baseFinal > baseTris {
		return nil, meta, ch, fmt.Errorf("%w: delta base watermark (%d tris, %d final) out of range", ErrFrameSize, baseTris, baseFinal)
	}

	dl := &delaunay.BuildDelta{
		Round: sc.round,
		Done:  sc.done,
		N:     sc.n,
		Base:  delaunay.Watermark{Round: baseRound, Tris: int(baseTris), Final: int(baseFinal)},
		Stats: sc.stats,
		Pred:  sc.pred,
	}
	sec, err := decodeLogFrames(d, baseTris)
	if err != nil {
		return nil, meta, ch, err
	}
	dl.Tris = sec.tris
	dl.Depth = sec.depth
	dl.Final = sec.final
	dl.Faces = sec.faces
	dl.Cand = sec.cand
	if err := dl.Validate(); err != nil {
		return nil, meta, ch, fmt.Errorf("%w: %v", ErrDeltaChain, err)
	}
	return dl, meta, ch, nil
}

// Kind distinguishes the two on-disk generation types.
type Kind uint8

const (
	KindFull Kind = 1 + iota
	KindDelta
)

func (k Kind) String() string {
	switch k {
	case KindFull:
		return "full"
	case KindDelta:
		return "delta"
	}
	return "kind-?"
}

// Image is one decoded checkpoint file of either kind. Exactly one of
// State (KindFull) and Delta (KindDelta) is set; Chain is meaningful only
// for deltas.
type Image struct {
	Kind  Kind
	State *delaunay.BuildState
	Delta *delaunay.BuildDelta
	Meta  Meta
	Chain Chain
}

// DecodeAny parses a checkpoint file of either kind, dispatching on the
// first frame's type byte. Same error discipline as Decode/DecodeDelta.
func DecodeAny(data []byte) (*Image, error) {
	if err := checkPreamble(data); err != nil {
		return nil, err
	}
	if len(data) < 17 {
		return nil, fmt.Errorf("%w: no frame after the preamble", ErrTruncated)
	}
	switch data[16] {
	case fDeltaHeader:
		dl, meta, ch, err := DecodeDelta(data)
		if err != nil {
			return nil, err
		}
		return &Image{Kind: KindDelta, Delta: dl, Meta: meta, Chain: ch}, nil
	default:
		// Anything else must be a full image; Decode rejects a wrong
		// leading frame type with ErrFrameOrder.
		st, meta, err := Decode(data)
		if err != nil {
			return nil, err
		}
		return &Image{Kind: KindFull, State: st, Meta: meta}, nil
	}
}

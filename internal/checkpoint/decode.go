package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/delaunay"
	"repro/internal/geom"
)

// decoder walks a checkpoint image frame by frame. All reads are
// bounds-checked against the actual input; declared lengths and counts
// are verified BEFORE any allocation sized from them, so memory use is
// O(len(input)) even for adversarial headers.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

// makeNonEmpty keeps decoded empty collections nil, so a decoded state
// compares field-for-field with a freshly captured one.
func makeNonEmpty[T any](n int) []T {
	if n == 0 {
		return nil
	}
	return make([]T, n)
}

// nextFrame validates and returns the payload of the next frame, which
// must have type want.
func (d *decoder) nextFrame(want byte) ([]byte, error) {
	if d.remaining() < 5 {
		return nil, fmt.Errorf("%w: %d bytes left at offset %d, need a frame header", ErrTruncated, d.remaining(), d.off)
	}
	t := d.b[d.off]
	n := binary.LittleEndian.Uint32(d.b[d.off+1 : d.off+5])
	if t != want {
		return nil, fmt.Errorf("%w: got %s at offset %d, want %s", ErrFrameOrder, frameName(t), d.off, frameName(want))
	}
	if n > maxFramePayload {
		return nil, fmt.Errorf("%w: %s frame declares %d bytes (cap %d)", ErrFrameSize, frameName(t), n, maxFramePayload)
	}
	total := 5 + int(n) + 4
	if d.remaining() < total {
		return nil, fmt.Errorf("%w: %s frame declares %d payload bytes, %d bytes left", ErrTruncated, frameName(t), n, d.remaining()-5)
	}
	body := d.b[d.off : d.off+5+int(n)]
	crc := binary.LittleEndian.Uint32(d.b[d.off+5+int(n) : d.off+total])
	if crc32Of(body) != crc {
		return nil, fmt.Errorf("%w: %s frame at offset %d", ErrFrameCRC, frameName(t), d.off)
	}
	d.off += total
	return body[5:], nil
}

// countedPayload splits payload into its leading element count and body,
// requiring count*elemSize == len(body) exactly. The multiplication
// cannot overflow: count is rejected first unless it is ≤ len(body),
// which is ≤ maxFramePayload.
func countedPayload(name string, payload []byte, elemSize int) (int, []byte, error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: %s frame too short for its count", ErrFrameSize, name)
	}
	cnt := binary.LittleEndian.Uint64(payload)
	body := payload[8:]
	if cnt > uint64(len(body)) || int(cnt)*elemSize != len(body) {
		return 0, nil, fmt.Errorf("%w: %s frame declares %d elements in %d bytes", ErrFrameSize, name, cnt, len(body))
	}
	return int(cnt), body, nil
}

// Decode parses a checkpoint image produced by Encode (or committed by a
// Writer). It returns typed errors — never panics — on any structurally
// invalid input, and performs the cross-frame consistency checks the
// format guarantees (matching element counts, footer echo). The returned
// state is structurally sound; callers that will trust its indices must
// still run BuildState.Validate (Restore does).
func Decode(data []byte) (*delaunay.BuildState, Meta, error) {
	var meta Meta
	if len(data) < 16 {
		return nil, meta, fmt.Errorf("%w: %d bytes, need a 16-byte preamble", ErrTruncated, len(data))
	}
	if string(data[:8]) != magic {
		return nil, meta, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != version {
		return nil, meta, fmt.Errorf("%w: %d (supported: %d)", ErrBadVersion, v, version)
	}
	// The reserved word must be zero in this version: rejecting nonzero
	// keeps it available for future use AND keeps every preamble byte
	// covered by some check.
	if r := binary.LittleEndian.Uint32(data[12:16]); r != 0 {
		return nil, meta, fmt.Errorf("%w: reserved word is %#x", ErrBadVersion, r)
	}
	d := &decoder{b: data, off: 16}

	hdr, err := d.nextFrame(fHeader)
	if err != nil {
		return nil, meta, err
	}
	if len(hdr) != hdrLen {
		return nil, meta, fmt.Errorf("%w: header frame is %d bytes, want %d", ErrFrameSize, len(hdr), hdrLen)
	}
	st := &delaunay.BuildState{
		Round: int32(binary.LittleEndian.Uint32(hdr[0:4])),
		Done:  hdr[4] != 0,
	}
	if hdr[4] > 1 {
		return nil, meta, fmt.Errorf("%w: done flag is %d", ErrFrameSize, hdr[4])
	}
	n := binary.LittleEndian.Uint64(hdr[5:13])
	if n > maxFramePayload/16 {
		return nil, meta, fmt.Errorf("%w: header declares %d points", ErrFrameSize, n)
	}
	st.N = int(n)
	meta.Seed = binary.LittleEndian.Uint64(hdr[13:21])
	meta.Build = binary.LittleEndian.Uint64(hdr[21:29])
	st.Stats.InCircleTests = int64(binary.LittleEndian.Uint64(hdr[29:37]))
	st.Stats.TrianglesCreated = int64(binary.LittleEndian.Uint64(hdr[37:45]))
	st.Stats.Rounds = int(int64(binary.LittleEndian.Uint64(hdr[45:53])))
	st.Stats.DepDepth = int(int64(binary.LittleEndian.Uint64(hdr[53:61])))
	st.Pred.Orient2DCalls = int64(binary.LittleEndian.Uint64(hdr[61:69]))
	st.Pred.Orient2DExact = int64(binary.LittleEndian.Uint64(hdr[69:77]))
	st.Pred.InCircleCalls = int64(binary.LittleEndian.Uint64(hdr[77:85]))
	st.Pred.InCircleExact = int64(binary.LittleEndian.Uint64(hdr[85:93]))

	pay, err := d.nextFrame(fPoints)
	if err != nil {
		return nil, meta, err
	}
	cnt, body, err := countedPayload("points", pay, 16)
	if err != nil {
		return nil, meta, err
	}
	if cnt != st.N+3 {
		return nil, meta, fmt.Errorf("%w: %d points for n=%d (want n+3)", ErrFrameSize, cnt, st.N)
	}
	st.Pts = make([]geom.Point, cnt)
	for i := range st.Pts {
		st.Pts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(body[16*i:]))
		st.Pts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(body[16*i+8:]))
	}

	pay, err = d.nextFrame(fTriV)
	if err != nil {
		return nil, meta, err
	}
	nt, body, err := countedPayload("triangle-corners", pay, 12)
	if err != nil {
		return nil, meta, err
	}
	st.Tris = make([]delaunay.Tri, nt)
	for i := range st.Tris {
		st.Tris[i].V[0] = int32(binary.LittleEndian.Uint32(body[12*i:]))
		st.Tris[i].V[1] = int32(binary.LittleEndian.Uint32(body[12*i+4:]))
		st.Tris[i].V[2] = int32(binary.LittleEndian.Uint32(body[12*i+8:]))
	}

	pay, err = d.nextFrame(fELen)
	if err != nil {
		return nil, meta, err
	}
	cnt, elens, err := countedPayload("encroacher-lengths", pay, 4)
	if err != nil {
		return nil, meta, err
	}
	if cnt != nt {
		return nil, meta, fmt.Errorf("%w: %d encroacher lengths for %d triangles", ErrFrameSize, cnt, nt)
	}

	pay, err = d.nextFrame(fEVal)
	if err != nil {
		return nil, meta, err
	}
	totalE, evals, err := countedPayload("encroacher-values", pay, 4)
	if err != nil {
		return nil, meta, err
	}
	// The per-triangle lengths must tile the value array exactly. Summing
	// u32 lengths in uint64 cannot overflow (each ≤ 2^32, count ≤ 2^28).
	var sum uint64
	for i := 0; i < nt; i++ {
		sum += uint64(binary.LittleEndian.Uint32(elens[4*i:]))
	}
	if sum != uint64(totalE) {
		return nil, meta, fmt.Errorf("%w: encroacher lengths sum to %d, values frame has %d", ErrFrameSize, sum, totalE)
	}
	// One backing array for every E list: the slices are read-only after
	// restore, and a single allocation keeps Decode at two passes.
	evBack := make([]int32, totalE)
	for i := range evBack {
		evBack[i] = int32(binary.LittleEndian.Uint32(evals[4*i:]))
	}
	off := 0
	for i := 0; i < nt; i++ {
		l := int(binary.LittleEndian.Uint32(elens[4*i:]))
		if l > 0 {
			st.Tris[i].E = evBack[off : off+l : off+l]
		}
		off += l
	}

	pay, err = d.nextFrame(fDepth)
	if err != nil {
		return nil, meta, err
	}
	cnt, body, err = countedPayload("depths", pay, 4)
	if err != nil {
		return nil, meta, err
	}
	if cnt != nt {
		return nil, meta, fmt.Errorf("%w: %d depths for %d triangles", ErrFrameSize, cnt, nt)
	}
	st.Depth = make([]int32, cnt)
	for i := range st.Depth {
		st.Depth[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}

	pay, err = d.nextFrame(fFinal)
	if err != nil {
		return nil, meta, err
	}
	cnt, body, err = countedPayload("final-ids", pay, 4)
	if err != nil {
		return nil, meta, err
	}
	st.Final = makeNonEmpty[int32](cnt)
	for i := range st.Final {
		st.Final[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}

	pay, err = d.nextFrame(fFaces)
	if err != nil {
		return nil, meta, err
	}
	cnt, body, err = countedPayload("faces", pay, 24)
	if err != nil {
		return nil, meta, err
	}
	st.Faces = makeNonEmpty[delaunay.FaceRec](cnt)
	for i := range st.Faces {
		st.Faces[i].Key = binary.LittleEndian.Uint64(body[24*i:])
		st.Faces[i].W0 = binary.LittleEndian.Uint64(body[24*i+8:])
		st.Faces[i].W1 = binary.LittleEndian.Uint64(body[24*i+16:])
	}

	pay, err = d.nextFrame(fCand)
	if err != nil {
		return nil, meta, err
	}
	cnt, body, err = countedPayload("candidates", pay, 8)
	if err != nil {
		return nil, meta, err
	}
	st.Cand = makeNonEmpty[uint64](cnt)
	for i := range st.Cand {
		st.Cand[i] = binary.LittleEndian.Uint64(body[8*i:])
	}

	pay, err = d.nextFrame(fFooter)
	if err != nil {
		return nil, meta, err
	}
	if len(pay) != 8 || binary.LittleEndian.Uint64(pay) != uint64(nt) {
		return nil, meta, fmt.Errorf("%w: footer echo mismatch", ErrFrameSize)
	}
	if d.remaining() != 0 {
		return nil, meta, fmt.Errorf("%w: %d trailing bytes after footer", ErrFrameSize, d.remaining())
	}
	return st, meta, nil
}

package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/rng"
)

// midState builds a triangulation partway and captures it, along with the
// uninterrupted reference mesh for the same input.
func midState(t testing.TB, seed uint64, n, steps int) (*delaunay.BuildState, *delaunay.Mesh) {
	t.Helper()
	pts := geom.Dedup(geom.UniformSquare(rng.New(seed), n))
	lv := delaunay.NewLive(pts)
	for i := 0; i < steps; i++ {
		if more, err := lv.Step(nil); err != nil || !more {
			t.Fatalf("midState step %d: more=%v err=%v", i, more, err)
		}
	}
	return lv.CaptureState(), delaunay.ParTriangulate(pts)
}

func finishFrom(t testing.TB, st *delaunay.BuildState) *delaunay.Mesh {
	t.Helper()
	lv, err := delaunay.ResumeLive(st)
	if err != nil {
		t.Fatalf("ResumeLive: %v", err)
	}
	m, err := lv.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

// stateEqual compares two build states field by field, treating nil and
// empty encroacher lists as equal (the on-disk format does not preserve
// that distinction — only contents matter).
func stateEqual(t *testing.T, got, want *delaunay.BuildState) {
	t.Helper()
	if got.Round != want.Round || got.Done != want.Done || got.N != want.N {
		t.Fatalf("scalar mismatch: got (%d,%v,%d) want (%d,%v,%d)",
			got.Round, got.Done, got.N, want.Round, want.Done, want.N)
	}
	if got.Stats != want.Stats || got.Pred != want.Pred {
		t.Fatalf("stats mismatch: %+v/%+v vs %+v/%+v", got.Stats, got.Pred, want.Stats, want.Pred)
	}
	if !reflect.DeepEqual(got.Pts, want.Pts) {
		t.Fatal("points mismatch")
	}
	if len(got.Tris) != len(want.Tris) {
		t.Fatalf("%d triangles, want %d", len(got.Tris), len(want.Tris))
	}
	for i := range got.Tris {
		if got.Tris[i].V != want.Tris[i].V {
			t.Fatalf("triangle %d corners %v, want %v", i, got.Tris[i].V, want.Tris[i].V)
		}
		if len(got.Tris[i].E) != len(want.Tris[i].E) {
			t.Fatalf("triangle %d has %d encroachers, want %d", i, len(got.Tris[i].E), len(want.Tris[i].E))
		}
		for j := range got.Tris[i].E {
			if got.Tris[i].E[j] != want.Tris[i].E[j] {
				t.Fatalf("triangle %d encroacher %d: %d vs %d", i, j, got.Tris[i].E[j], want.Tris[i].E[j])
			}
		}
	}
	for name, pair := range map[string][2]interface{}{
		"depths":     {got.Depth, want.Depth},
		"final ids":  {got.Final, want.Final},
		"faces":      {got.Faces, want.Faces},
		"candidates": {got.Cand, want.Cand},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("%s mismatch", name)
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	st, want := midState(t, 11, 600, 3)
	meta := Meta{Seed: 11, Build: 4}
	img := Encode(st, meta)
	got, gotMeta, err := Decode(img)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if gotMeta != meta {
		t.Fatalf("meta roundtrip: %+v vs %+v", gotMeta, meta)
	}
	stateEqual(t, got, st)
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded state fails validation: %v", err)
	}
	// The decoded state must resume to the exact reference mesh.
	m := finishFrom(t, got)
	ref := finishFrom(t, st)
	if DigestMesh(m) != DigestMesh(ref) || DigestMesh(m) != DigestMesh(want) {
		t.Fatalf("digests diverge: decoded %08x, captured %08x, reference %08x",
			DigestMesh(m), DigestMesh(ref), DigestMesh(want))
	}
}

// TestDecodeTruncationEveryByte: every proper prefix of a valid image
// must fail with a typed error — the "crash at any byte" half of the
// durability claim, exercised directly against the format.
func TestDecodeTruncationEveryByte(t *testing.T) {
	st, _ := midState(t, 3, 200, 2)
	img := Encode(st, Meta{Seed: 3})
	for cut := 0; cut < len(img); cut++ {
		if _, _, err := Decode(img[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", cut, len(img))
		}
	}
}

// TestDecodeBitFlips: flipping any single byte must be caught (CRC,
// magic, or a structural check) — sampled across the image to keep the
// test fast while still covering every frame.
func TestDecodeBitFlips(t *testing.T) {
	st, _ := midState(t, 3, 200, 2)
	img := Encode(st, Meta{Seed: 3})
	for pos := 0; pos < len(img); pos += 7 {
		bad := append([]byte(nil), img...)
		bad[pos] ^= 0x40
		if _, _, err := Decode(bad); err == nil {
			t.Fatalf("byte flip at %d/%d decoded successfully", pos, len(img))
		}
	}
}

func TestSaveRestore(t *testing.T) {
	dir := t.TempDir()
	st, want := midState(t, 21, 800, 4)
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	path, err := w.Save(st, Meta{Seed: 21, Build: 1})
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if filepath.Base(path) != ckptName(1) {
		t.Fatalf("first save landed at %s, want generation 1", path)
	}
	got, meta, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if meta != (Meta{Seed: 21, Build: 1}) {
		t.Fatalf("restored meta %+v", meta)
	}
	if d := DigestMesh(finishFrom(t, got)); d != DigestMesh(want) {
		t.Fatalf("restored run digest %08x, reference %08x", d, DigestMesh(want))
	}
}

// TestRestoreFallsBackPastCorruption: with the newest generation mangled
// (and the manifest pointing at it), Restore must land on the previous
// one — generation-by-generation fallback.
func TestRestoreFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	stA, _ := midState(t, 5, 400, 2)
	stB, _ := midState(t, 5, 400, 4)
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if _, err := w.Save(stA, Meta{Build: 1}); err != nil {
		t.Fatalf("Save A: %v", err)
	}
	pathB, err := w.Save(stB, Meta{Build: 2})
	if err != nil {
		t.Fatalf("Save B: %v", err)
	}
	// Corrupt the newest file in place.
	data, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(pathB, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, meta, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore with corrupt newest: %v", err)
	}
	if meta.Build != 1 || got.Round != stA.Round {
		t.Fatalf("restored build %d round %d, want the older generation (build 1, round %d)",
			meta.Build, got.Round, stA.Round)
	}
	// With every generation corrupt, the error is not ErrNoCheckpoint.
	pathA := filepath.Join(dir, ckptName(1))
	if err := os.WriteFile(pathA, data[:30], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Restore(dir); err == nil || errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Restore over all-corrupt dir: %v", err)
	}
}

func TestRestoreEmpty(t *testing.T) {
	if _, _, err := Restore(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Restore(empty) = %v, want ErrNoCheckpoint", err)
	}
	if _, _, err := Restore(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Restore(missing dir) = %v, want ErrNoCheckpoint", err)
	}
}

// TestGenerationNumbering: a new writer resumes above what's on disk,
// prune keeps the newest keepGenerations, temp litter is cleaned up, and
// the manifest tracks the newest commit.
func TestGenerationNumbering(t *testing.T) {
	dir := t.TempDir()
	st, _ := midState(t, 9, 300, 2)
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := w.Save(st, Meta{Build: uint64(i)}); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	if g, ok := readManifest(dir); !ok || g != 4 {
		t.Fatalf("manifest reads (%d, %v), want generation 4", g, ok)
	}
	ents, _ := os.ReadDir(dir)
	var names []string
	for _, e := range ents {
		if _, ok := parseGen(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	if len(names) != keepGenerations {
		t.Fatalf("%d generations on disk after prune, want %d: %v", len(names), keepGenerations, names)
	}
	// Leave a fake temp file; a restarted writer must clean it and resume
	// numbering.
	litter := filepath.Join(dir, tmpPrefix+ckptName(99))
	if err := os.WriteFile(litter, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := NewWriter(dir)
	if err != nil {
		t.Fatalf("NewWriter (restart): %v", err)
	}
	if _, err := os.Stat(litter); !os.IsNotExist(err) {
		t.Fatal("restart did not clean temp litter")
	}
	p, err := w2.Save(st, Meta{Build: 9})
	if err != nil {
		t.Fatalf("Save after restart: %v", err)
	}
	if filepath.Base(p) != ckptName(5) {
		t.Fatalf("restarted writer committed %s, want generation 5", filepath.Base(p))
	}
	if _, meta, err := Restore(dir); err != nil || meta.Build != 9 {
		t.Fatalf("Restore after restart: meta %+v err %v", meta, err)
	}
}

func TestDigestMeshDistinguishes(t *testing.T) {
	_, a := midState(t, 2, 300, 1)
	_, b := midState(t, 4, 300, 1)
	if DigestMesh(a) == DigestMesh(b) {
		t.Fatal("different meshes digest equal")
	}
	if DigestMesh(a) != DigestMesh(a) {
		t.Fatal("digest unstable")
	}
}
